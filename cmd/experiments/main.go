// Command experiments regenerates the paper's evaluation tables and
// figures (DSN 2018, Ainsworth & Jones). Each figure is printed as a text
// table with the paper's headline expectation quoted above it.
//
// Usage:
//
//	experiments                 # run everything at default samples
//	experiments -run fig9       # one experiment
//	experiments -instrs 40000   # faster, smaller samples
//	experiments -workloads stream,randacc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"paradet/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, or one of "+
		strings.Join(experiments.Names(), ", "))
	instrs := flag.Uint64("instrs", 0, "committed-instruction sample per run (0 = workload default)")
	wl := flag.String("workloads", "", "comma-separated workload subset (default: all nine)")
	flag.Parse()

	opts := experiments.Options{MaxInstrs: *instrs}
	if *wl != "" {
		opts.Workloads = strings.Split(*wl, ",")
	}

	names := experiments.Names()
	if *run != "all" {
		names = []string{*run}
	}
	for _, name := range names {
		start := time.Now()
		out, err := experiments.RunByName(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("  [%s took %.1fs]\n\n", name, time.Since(start).Seconds())
	}
}
