// Command pdreport analyzes interval telemetry sidecars written by
// campaign runs (-telemetry on experiments, hetsim or pdsweep): it
// reconciles every sidecar's sample accounting against its header
// totals, prints a per-cell stall attribution table ranked
// worst-first by log-full stall fraction (the straggler ranking —
// cells whose commit is gated on the load-store log are the ones a
// bigger log or more checkers would speed up), and breaks the worst
// cell into equal-instruction phases.
//
// Usage:
//
//	pdreport -store .pdstore            # reads .pdstore/telemetry
//	pdreport -dir /tmp/sweep/merged/telemetry
//	pdreport -store .pdstore -top 5     # only the 5 worst cells
//	pdreport -store .pdstore -phases 8 -all
//	pdreport -store .pdstore -top 3 -all   # phase breakdowns for the 3 worst
//
// Output is deterministic for a given sidecar directory. A sidecar
// that fails reconciliation (sample counts inconsistent with its
// committed-instruction totals) is reported on stderr and makes the
// command exit 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"paradet/internal/obs/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	store := fs.String("store", "", "result store directory; sidecars are read from <store>/telemetry")
	dir := fs.String("dir", "", "sidecar directory (overrides -store)")
	top := fs.Int("top", 0, "print only the N worst cells (0 = all)")
	phases := fs.Int("phases", 4, "windows in each phase breakdown")
	all := fs.Bool("all", false, "phase breakdown for every shown cell (bounded by -top), not just the worst")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "pdreport:", err)
		return 1
	}

	src := *dir
	if src == "" {
		if *store == "" {
			return fail(fmt.Errorf("need -store or -dir (where are the sidecars?)"))
		}
		src = filepath.Join(*store, telemetry.SidecarDirName)
	}
	series, err := telemetry.LoadDir(src)
	if err != nil {
		return fail(err)
	}
	if len(series) == 0 {
		return fail(fmt.Errorf("no sidecars under %s (was the campaign run with -telemetry?)", src))
	}

	// Reconcile everything first: a sidecar whose sample accounting
	// disagrees with its own totals is not worth attributing.
	bad := 0
	attrs := make([]telemetry.Attribution, 0, len(series))
	byFP := make(map[string]*telemetry.Series, len(series))
	for _, s := range series {
		if err := telemetry.Reconcile(s); err != nil {
			fmt.Fprintln(stderr, "pdreport:", err)
			bad++
			continue
		}
		attrs = append(attrs, telemetry.Attribute(s))
		byFP[s.Header.Fingerprint] = s
	}
	telemetry.RankByLogFull(attrs)

	fmt.Fprintf(stdout, "telemetry: %d cell(s) under %s", len(series), src)
	if bad > 0 {
		fmt.Fprintf(stdout, " (%d failed reconciliation)", bad)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout)

	shown := attrs
	if *top > 0 && *top < len(shown) {
		shown = shown[:*top]
	}
	fmt.Fprintln(stdout, "stall attribution, worst-first by log-full fraction:")
	fmt.Fprintf(stdout, "  %-28s %-12s %10s %6s %9s %7s %8s %8s %9s\n",
		"cell", "fp", "instrs", "IPC", "logfull%", "ckpt%", "icache%", "rename%", "mispr/ki")
	for i := range shown {
		a := &shown[i]
		fmt.Fprintf(stdout, "  %-28s %-12s %10d %6.2f %9.2f %7.2f %8.2f %8.2f %9.2f\n",
			cellName(a), shortFP(a.Fingerprint), a.Instructions, a.IPC,
			100*a.LogFullFrac, 100*a.CheckpointFrac, 100*a.ICacheFrac, 100*a.RenameFrac,
			a.MispredictPerKI)
	}
	fmt.Fprintln(stdout)

	// Phase breakdowns cover the same cells as the table above: the
	// worst, or with -all every *shown* cell — `-top` bounds both.
	for i := range shown {
		a := &shown[i]
		if !*all && i > 0 {
			break
		}
		s := byFP[a.Fingerprint]
		ph := telemetry.Phases(s, *phases)
		if len(ph) == 0 {
			continue
		}
		fmt.Fprintf(stdout, "phases of %s (%s), %d window(s):\n", cellName(a), shortFP(a.Fingerprint), len(ph))
		fmt.Fprintf(stdout, "  %22s %6s %9s %7s %8s %8s %8s %7s %7s\n",
			"instrs", "IPC", "logfull%", "ckpt%", "icache%", "rename%", "rob", "seg%", "chk")
		for _, p := range ph {
			fmt.Fprintf(stdout, "  %10d-%-11d %6.2f %9.2f %7.2f %8.2f %8.2f %8.1f %7.1f %7.1f\n",
				p.From, p.To, p.IPC, 100*p.LogFullFrac, 100*p.CkptFrac,
				100*p.ICacheFrac, 100*p.RenameFrac, p.MeanROB, 100*p.MeanSeg, p.MeanCheckers)
		}
		fmt.Fprintln(stdout)
	}

	if bad > 0 {
		return fail(fmt.Errorf("%d sidecar(s) failed reconciliation", bad))
	}
	return 0
}

// cellName renders one cell's identity: workload/point[scheme].
func cellName(a *telemetry.Attribution) string {
	name := a.Workload
	if a.Point != "" {
		name += "/" + a.Point
	}
	if a.Scheme != "" {
		name += "[" + a.Scheme + "]"
	}
	return name
}

func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
