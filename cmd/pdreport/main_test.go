package main

import (
	"bytes"
	"strings"
	"testing"

	"paradet/internal/obs/telemetry"
)

// writeSidecar builds a reconcilable 6-sample series whose log-full
// stall fraction is logFullPerK/1000 of cycles, and writes it under
// dir. Distinct fractions make the worst-first ranking deterministic.
func writeSidecar(t *testing.T, dir, fp, workload string, logFullPerK uint64) {
	t.Helper()
	const interval = 1000
	p := telemetry.New(interval, 16)
	for k := uint64(1); k <= 6; k++ {
		p.Record(telemetry.Sample{
			Instructions:       k * interval,
			Cycles:             k * 2000,
			TimeNS:             float64(k) * 1250,
			LogFullStallCycles: k * 2 * logFullPerK,
			ROB:                40,
		})
	}
	s := &telemetry.Series{Samples: p.Samples()}
	s.Header.Fingerprint = fp
	s.Header.Workload = workload
	s.Header.Point = "base"
	s.Header.Scheme = "protected"
	s.Header.Finalize(p)
	if _, err := s.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
}

// TestTopBoundsPhaseBreakdowns: -all prints a phase breakdown for
// every *shown* cell — `-top` bounds the breakdowns exactly as it
// bounds the table. Historically -all walked the full ranking, so
// `-top 1 -all` printed breakdowns for cells the table never showed.
func TestTopBoundsPhaseBreakdowns(t *testing.T) {
	dir := t.TempDir()
	writeSidecar(t, dir, strings.Repeat("aa", 32), "worstload", 100) // 10% log-full
	writeSidecar(t, dir, strings.Repeat("bb", 32), "midload", 50)    // 5%
	writeSidecar(t, dir, strings.Repeat("cc", 32), "coolload", 10)   // 1%

	run2 := func(args ...string) string {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("pdreport %v exited %d: %s", args, code, stderr.String())
		}
		return stdout.String()
	}
	breakdowns := func(out string) int { return strings.Count(out, "phases of ") }

	cases := []struct {
		name  string
		args  []string
		want  int
		first string // workload the first breakdown must belong to
	}{
		{"default: worst cell only", []string{"-dir", dir}, 1, "worstload"},
		{"-all: every cell", []string{"-dir", dir, "-all"}, 3, "worstload"},
		{"-top 2: table bounded, worst broken down", []string{"-dir", dir, "-top", "2"}, 1, "worstload"},
		{"-top 2 -all: breakdowns bounded too", []string{"-dir", dir, "-top", "2", "-all"}, 2, "worstload"},
		{"-top 1 -all: single breakdown", []string{"-dir", dir, "-top", "1", "-all"}, 1, "worstload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := run2(tc.args...)
			if got := breakdowns(out); got != tc.want {
				t.Fatalf("%d phase breakdown(s), want %d:\n%s", got, tc.want, out)
			}
			idx := strings.Index(out, "phases of ")
			if !strings.HasPrefix(out[idx+len("phases of "):], tc.first) {
				t.Fatalf("first breakdown is not %s:\n%s", tc.first, out[idx:idx+60])
			}
		})
	}
}

// TestBadSidecarExitsNonzero: a sidecar failing reconciliation is
// reported and makes pdreport exit 1, without suppressing the report
// for the healthy cells.
func TestBadSidecarExitsNonzero(t *testing.T) {
	dir := t.TempDir()
	writeSidecar(t, dir, strings.Repeat("aa", 32), "goodload", 10)

	// A lying header: claims more instructions than its samples cover.
	p := telemetry.New(1000, 16)
	for k := uint64(1); k <= 3; k++ {
		p.Record(telemetry.Sample{Instructions: k * 1000, Cycles: k * 2000})
	}
	s := &telemetry.Series{Samples: p.Samples()}
	s.Header.Fingerprint = strings.Repeat("dd", 32)
	s.Header.Workload = "liarload"
	s.Header.Finalize(p)
	s.Header.Instructions += 1000
	if _, err := s.WriteFile(dir); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d with a malformed sidecar, want 1", code)
	}
	if !strings.Contains(stdout.String(), "goodload") {
		t.Error("healthy cell missing from the report")
	}
	if !strings.Contains(stdout.String(), "1 failed reconciliation") {
		t.Error("reconciliation failure not counted in the report")
	}
	if !strings.Contains(stderr.String(), "liarload") && !strings.Contains(stderr.String(), "dddd") {
		t.Errorf("stderr does not identify the bad sidecar: %s", stderr.String())
	}
}
