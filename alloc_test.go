package paradet_test

// Allocation regression tests: the hot path (ooo core ready/wakeup
// scheduling, fixed fetch ring, scratch DynInsts, slice scheduler) does
// no per-instruction heap allocation, so a whole run's allocation count
// is small and — crucially — independent of instruction count. These
// bounds are ~10x the measured values to stay robust across Go
// releases, while still catching any reintroduced per-instruction
// allocation (which costs tens of thousands at these sample sizes).

import (
	"testing"

	"paradet"
)

func runAllocs(t *testing.T, instrs uint64) float64 {
	t.Helper()
	p, _, err := paradet.LoadWorkload("fluidanimate")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradet.DefaultConfig()
	cfg.MaxInstrs = instrs
	return testing.AllocsPerRun(3, func() {
		if _, err := paradet.Run(cfg, p); err != nil {
			t.Error(err)
		}
	})
}

func TestRunAllocsBounded(t *testing.T) {
	if a := runAllocs(t, 20_000); a > 2000 {
		t.Errorf("protected 20k-instr run did %.0f allocs, want <= 2000 "+
			"(a per-instruction allocation crept back into the hot path)", a)
	}
}

// TestRunAllocsFlat pins the fetch-ring fix specifically: the old
// `fetchQ = fetchQ[1:]` pattern regrew the queue per fill, so allocation
// count scaled with instruction count. With the fixed ring (and the rest
// of the zero-alloc hot path) a 4x longer run may not cost more than a
// small additive overhead.
func TestRunAllocsFlat(t *testing.T) {
	short := runAllocs(t, 10_000)
	long := runAllocs(t, 40_000)
	if long > short+1500 {
		t.Errorf("allocations scale with instruction count: %.0f @10k vs %.0f @40k", short, long)
	}
}
